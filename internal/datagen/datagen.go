// Package datagen populates a storage.Store with deterministic synthetic
// data matching a catalog schema's statistical profile. It stands in for the
// TPC dbgen/dsdgen tools: per-column distinct counts, null fractions, skew
// and foreign-key reference patterns are honored, so the cost model's
// catalog-based estimates line up with what the execution engine actually
// scans.
package datagen

import (
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// Generate materializes every table in the schema at its scale factor.
// The same (schema, seed) pair always yields identical data.
func Generate(s *catalog.Schema, seed int64) *storage.Store {
	store := storage.NewStore()
	for _, tbl := range s.Tables {
		store.AddTable(generateTable(s, tbl, seed))
	}
	return store
}

// generateTable fills one table. Each column gets its own RNG stream derived
// from the seed and the column name, so adding a column never perturbs the
// data of existing ones.
func generateTable(s *catalog.Schema, tbl *catalog.Table, seed int64) *storage.Table {
	rows := int(tbl.Rows(s.SF))
	t := storage.NewTable(tbl.Name, rows)
	for _, col := range tbl.Columns {
		rng := rand.New(rand.NewSource(seed ^ hash64(col.QualifiedName())))
		t.SetColumn(col.Name, generateColumn(s, col, rows, rng))
	}
	return t
}

func generateColumn(s *catalog.Schema, col *catalog.Column, rows int, rng *rand.Rand) []int64 {
	vals := make([]int64, rows)
	lo, hi := s.ColumnDomain(col.QualifiedName())
	width := hi - lo
	if width < 1 {
		width = 1
	}
	var zipf *rand.Zipf
	if col.Skew > 1 && width > 1 {
		zipf = rand.NewZipf(rng, col.Skew, 1, uint64(width-1))
	}
	for i := range vals {
		if col.NullFrac > 0 && rng.Float64() < col.NullFrac {
			vals[i] = storage.Null
			continue
		}
		switch {
		case col.Kind == catalog.KindPK:
			vals[i] = int64(i)
		case col.Corr > 0 && rng.Float64() < col.Corr:
			// Physically correlated column: value tracks storage position
			// (append-ordered data), realizing the catalog's Corr statistic.
			vals[i] = lo + int64(float64(i)/float64(rows)*float64(width))
		case zipf != nil:
			vals[i] = lo + int64(zipf.Uint64())
		default:
			vals[i] = lo + rng.Int63n(width)
		}
	}
	return vals
}

// hash64 is FNV-1a over the string, used to derive per-column RNG streams.
func hash64(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

package qgen

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/sql"
)

func setup(t *testing.T) (*catalog.Schema, *FSM, *cost.WhatIf) {
	t.Helper()
	s := catalog.TPCH(1)
	return s, NewFSM(s), cost.NewWhatIf(cost.NewModel(s))
}

func TestFSMGeneratesValidQueries(t *testing.T) {
	s, f, _ := setup(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		q := f.Generate(rng)
		// Re-parse the rendered text: fully round-trippable SQL.
		q2, err := sql.ParseResolved(q.String(), s)
		if err != nil {
			t.Fatalf("FSM query %q not re-parseable: %v", q, err)
		}
		if !q.Equal(q2) {
			t.Fatalf("round trip mismatch for %q", q)
		}
	}
}

func TestFSMQueriesAreCostable(t *testing.T) {
	_, f, w := setup(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		q := f.Generate(rng)
		if c := w.QueryCost(q, nil); c <= 0 {
			t.Fatalf("cost %f for %q", c, q)
		}
	}
}

func TestPredicateWithSelectivity(t *testing.T) {
	s, f, _ := setup(t)
	rng := rand.New(rand.NewSource(3))
	col := s.Column("lineitem.l_shipdate")
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5} {
		p := f.PredicateWithSelectivity(col, sel, rng)
		if p.Column != "lineitem.l_shipdate" {
			t.Fatalf("predicate on %s", p.Column)
		}
		if !p.Op.Sargable() {
			t.Fatal("non-sargable predicate")
		}
	}
	// A tiny selectivity on a small-domain column degrades to a point probe.
	small := s.Column("lineitem.l_returnflag")
	p := f.PredicateWithSelectivity(small, 0.0001, rng)
	if p.Op != sql.OpEq {
		t.Errorf("expected point predicate, got %v", p.Op)
	}
}

func TestSubTokens(t *testing.T) {
	toks := SubTokens("SELECT customer.c_income FROM customer")
	want := []string{"SELECT", "customer", ".", "c", "_", "income", "FROM", "customer"}
	if len(toks) != len(want) {
		t.Fatalf("SubTokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestLMLearnsTransitions(t *testing.T) {
	lm := NewLM(2)
	lm.Observe([]string{"a", "b", "a", "b", "a", "c"}, 1)
	if pb, pc := lm.Prob([]string{"a"}, "b"), lm.Prob([]string{"a"}, "c"); pb <= pc {
		t.Errorf("P(b|a)=%f should exceed P(c|a)=%f", pb, pc)
	}
}

func TestConstrainedChoosePrefixMatching(t *testing.T) {
	// The paper's §3.3 example: candidates share the prefix "c_"; decoding
	// proceeds sub-token by sub-token, discarding mismatches.
	lm := NewLM(2)
	lm.Observe([]string{"select", "c", "_", "income"}, 5)
	lm.Observe([]string{"select", "o", "_", "date"}, 1)
	got := lm.ConstrainedChoose([]string{"select"}, []string{"c_income", "o_date", "c_phone"}, 0, nil)
	if got != "c_income" {
		t.Errorf("ConstrainedChoose = %q, want c_income", got)
	}
	// Result is always one of the candidates, even for an untrained model.
	empty := NewLM(2)
	got = empty.ConstrainedChoose(nil, []string{"x_a", "y_b"}, 0, nil)
	if got != "x_a" && got != "y_b" {
		t.Errorf("ConstrainedChoose returned non-candidate %q", got)
	}
	if got := lm.ConstrainedChoose(nil, nil, 0, nil); got != "" {
		t.Errorf("no candidates should yield empty, got %q", got)
	}
}

func TestBuildCorpus(t *testing.T) {
	_, f, w := setup(t)
	rng := rand.New(rand.NewSource(4))
	corpus := BuildCorpus(f, w, GreedyLabeler(w, 3), 30, rng)
	if len(corpus) != 30 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	for _, s := range corpus {
		if s.Tokens[0] != TokCLS {
			t.Fatal("sample does not start with <CLS>")
		}
		if s.Reward < 0 || s.Reward >= 1.000001 {
			t.Fatalf("reward %f out of range", s.Reward)
		}
		seps := 0
		for _, tok := range s.Tokens {
			if tok == TokSEP {
				seps++
			}
		}
		if seps != 2 {
			t.Fatalf("sample has %d separators, want 2", seps)
		}
	}
}

func TestIABARTGeneratesIndexAwareQueries(t *testing.T) {
	_, f, w := setup(t)
	g := TrainIABART(f, w, nil, fastOpts(), 5)
	rng := rand.New(rand.NewSource(6))
	targets := [][]string{
		{"lineitem.l_partkey"},
		{"orders.o_custkey", "orders.o_orderdate"},
		{"customer.c_acctbal", "customer.c_nationkey"},
		{"lineitem.l_shipdate", "part.p_brand"},
	}
	for _, cols := range targets {
		q, err := g.Generate(cols, 0.5, rng)
		if err != nil {
			t.Fatalf("Generate(%v): %v", cols, err)
		}
		opt, red, ok := OptimalSingleColumn(w, q)
		if !ok {
			t.Fatalf("Generate(%v) produced non-sargable query %q", cols, q)
		}
		found := false
		for _, c := range cols {
			if c == opt {
				found = true
			}
		}
		if !found {
			t.Errorf("optimal column %s (red %.3f) not in targets %v for %q", opt, red, cols, q)
		}
	}
}

func TestIABARTGACIsOne(t *testing.T) {
	s, f, w := setup(t)
	g := TrainIABART(f, w, nil, fastOpts(), 7)
	rng := rand.New(rand.NewSource(8))
	m := EvaluateGenerator(g, s, w, nil, 40, rng)
	if m.GAC != 1 {
		t.Errorf("IABART GAC = %f, want 1 (FSM-constrained decoding)", m.GAC)
	}
	if m.IAC <= 0 {
		t.Errorf("IABART IAC = %f, want > 0", m.IAC)
	}
}

func TestGeneratorOrdering(t *testing.T) {
	// The qualitative Table 3 shape: IABART's IAC beats ST's and DT's, and
	// the noisy (unconstrained) generator has GAC < 1.
	s, f, w := setup(t)
	g := TrainIABART(f, w, nil, fastOpts(), 9)
	rng := rand.New(rand.NewSource(10))
	// Distinct is a saturation metric: repetitive generators only sink
	// below diverse ones once the corpus is large enough, so use a few
	// hundred trials.
	const n = 250
	mIA := EvaluateGenerator(g, s, w, nil, n, rand.New(rand.NewSource(11)))
	mST := EvaluateGenerator(ST{Schema: s}, s, w, nil, n, rand.New(rand.NewSource(11)))
	mDT := EvaluateGenerator(NewDT(s), s, w, nil, n, rand.New(rand.NewSource(11)))
	noisy := Noisy{Inner: g, ErrRate: 0.15, Label: "GPT-sim"}
	mN := EvaluateGenerator(noisy, s, w, nil, n, rng)

	if mIA.IAC <= mDT.IAC {
		t.Errorf("IABART IAC %f should beat DT %f", mIA.IAC, mDT.IAC)
	}
	if mN.GAC >= 1 {
		t.Errorf("noisy GAC = %f, want < 1", mN.GAC)
	}
	if mST.GAC != 1 || mDT.GAC != 1 {
		t.Errorf("template baselines must be grammatical: ST %f DT %f", mST.GAC, mDT.GAC)
	}
	// Distinct: IABART clearly beats the template-matching DT; against ST
	// the race is within noise here because our protocol hands ST fresh
	// random target columns every trial (inflating its corpus diversity
	// relative to the paper's fixed simple template) — recorded as a known
	// deviation in EXPERIMENTS.md.
	if mIA.Distinct <= mDT.Distinct {
		t.Errorf("IABART Distinct %f should beat DT %f", mIA.Distinct, mDT.Distinct)
	}
	if mIA.Distinct < 0.8*mST.Distinct {
		t.Errorf("IABART Distinct %f far below ST %f", mIA.Distinct, mST.Distinct)
	}
}

func TestAblationNames(t *testing.T) {
	s, f, w := setup(t)
	_ = s
	opts := fastOpts()
	cases := []struct {
		lm, cond bool
		want     string
	}{
		{true, true, "IABART"},
		{false, true, "IABART w/o Task1"},
		{true, false, "IABART w/o Task2"},
		{false, false, "IABART w/o Task1&2"},
	}
	for _, c := range cases {
		o := opts
		o.UseLM, o.IndexConditioning = c.lm, c.cond
		g := TrainIABART(f, w, nil, o, 1)
		if g.Name() != c.want {
			t.Errorf("Name = %q, want %q", g.Name(), c.want)
		}
	}
}

func TestOptimalSingleColumn(t *testing.T) {
	s, _, w := setup(t)
	q, err := sql.ParseResolved("SELECT * FROM lineitem WHERE l_partkey = 7", s)
	if err != nil {
		t.Fatal(err)
	}
	col, red, ok := OptimalSingleColumn(w, q)
	if !ok || col != "lineitem.l_partkey" || red <= 0 {
		t.Errorf("OptimalSingleColumn = (%s, %f, %v)", col, red, ok)
	}
	// A query with no sargable predicates has no optimal index.
	q2, err := sql.ParseResolved("SELECT * FROM region", s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := OptimalSingleColumn(w, q2); ok {
		t.Error("non-sargable query reported an optimal index")
	}
}

func fastOpts() Options {
	o := DefaultOptions()
	o.CorpusSize = 60
	o.MaxAttempts = 6
	return o
}

package qgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/cost"
	"repro/internal/sql"
)

// Labeler maps a query to a recommended index configuration. The paper
// labels IABART's training corpus with SWIRL (§3.1, chosen for its on-the-fly
// adaptability); the default here is the greedy what-if labeler, which plays
// the same role at a fraction of the cost — any advisor can be plugged in.
type Labeler func(q *sql.Query) []cost.Index

// GreedyLabeler returns a labeler that picks up to budget single-column
// indexes by greedy what-if reduction.
func GreedyLabeler(w *cost.WhatIf, budget int) Labeler {
	return func(q *sql.Query) []cost.Index {
		var chosen []cost.Index
		cur := w.QueryCost(q, nil)
		cands := q.SargableColumns()
		used := make(map[string]bool, len(cands))
		for len(chosen) < budget {
			bestCol, bestCost := "", cur
			for _, c := range cands {
				if used[c] {
					continue
				}
				cc := w.QueryCost(q, append(chosen, cost.NewIndex(c)))
				if cc < bestCost {
					bestCol, bestCost = c, cc
				}
			}
			if bestCol == "" {
				break
			}
			used[bestCol] = true
			chosen = append(chosen, cost.NewIndex(bestCol))
			cur = bestCost
		}
		return chosen
	}
}

// Sample is one training sequence of the §3.1 corpus: a query, its labeled
// index configuration, and the discretized indexing performance, serialized
// to the sub-token sequence "<CLS> q <SEP> I <SEP> R".
type Sample struct {
	Query   *sql.Query
	Indexes []cost.Index
	Reward  float64 // relative cost reduction, rounded to 2 decimals
	Tokens  []string
}

// Special corpus tokens.
const (
	TokCLS  = "<CLS>"
	TokSEP  = "<SEP>"
	TokMASK = "<MASK>"
)

// BuildCorpus constructs n training samples: FSM-generated queries labeled
// by the labeler, with estimated rewards computed from what-if costs
// (estimated rather than executed "to speed up the construction and collect
// more training samples", §3.1).
func BuildCorpus(f *FSM, w *cost.WhatIf, label Labeler, n int, rng *rand.Rand) []Sample {
	samples := make([]Sample, 0, n)
	for len(samples) < n {
		q := f.Generate(rng)
		idx := label(q)
		base := w.QueryCost(q, nil)
		reward := 0.0
		if base > 0 && len(idx) > 0 {
			reward = 1 - w.QueryCost(q, idx)/base
		}
		reward = math.Round(reward*100) / 100
		samples = append(samples, Sample{
			Query:   q,
			Indexes: idx,
			Reward:  reward,
			Tokens:  SampleTokens(q, idx, reward),
		})
	}
	return samples
}

// SampleTokens serializes a (query, indexes, reward) triple to sub-tokens.
func SampleTokens(q *sql.Query, idx []cost.Index, reward float64) []string {
	tokens := []string{TokCLS}
	tokens = append(tokens, SubTokens(q.String())...)
	tokens = append(tokens, TokSEP)
	for _, ix := range idx {
		tokens = append(tokens, SubTokens(ix.Key())...)
	}
	tokens = append(tokens, TokSEP, fmt.Sprintf("%.2f", reward))
	return tokens
}

// SubTokens splits SQL text into sub-tokens, segmenting identifiers on '_'
// and '.' boundaries the way the paper's sub-token tokenizer handles
// out-of-distribution words: "customer.c_income" becomes
// ["customer", ".", "c", "_", "income"] (§3.1).
func SubTokens(text string) []string {
	raw, err := sql.Tokenize(text)
	if err != nil {
		// Fall back to whitespace splitting for non-SQL text (used only by
		// the noisy baseline's corrupted outputs).
		return strings.Fields(text)
	}
	var out []string
	for _, t := range raw {
		switch t.Kind {
		case sql.TokIdent:
			out = append(out, splitIdent(t.Text)...)
		case sql.TokNumber:
			// Numeric literals decompose into digit sub-tokens, mirroring a
			// BPE tokenizer's bounded number pieces: token diversity then
			// reflects query structure, not constant entropy.
			for i := 0; i < len(t.Text); i++ {
				out = append(out, string(t.Text[i]))
			}
		default:
			out = append(out, t.Text)
		}
	}
	return out
}

// splitIdent splits an identifier into sub-tokens, keeping separators.
func splitIdent(ident string) []string {
	var out []string
	start := 0
	for i := 0; i < len(ident); i++ {
		if ident[i] == '_' || ident[i] == '.' {
			if i > start {
				out = append(out, ident[start:i])
			}
			out = append(out, string(ident[i]))
			start = i + 1
		}
	}
	if start < len(ident) {
		out = append(out, ident[start:])
	}
	return out
}

# Development entry points. CI runs the same steps (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race chaos bench fmt vet lint vuln

all: fmt vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the whole suite under -race with the fault-injection layer on:
# the fault-aware tests read FAULT_RATE as their injection ceiling, so the
# retry / breaker / fallback paths and the checkpoint journal are exercised,
# while the determinism and zero-rung control assertions still hold.
FAULT_RATE ?= 0.2

chaos:
	FAULT_RATE=$(FAULT_RATE) $(GO) test -race ./...

# lint and vuln expect the tools on PATH (CI installs pinned versions; see
# .github/workflows/ci.yml).
lint:
	staticcheck ./...

vuln:
	govulncheck ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# bench runs the macro benchmarks once each (-benchtime 1x: these are
# whole-experiment wall-clock probes, one op IS the experiment) and the
# what-if cache micro benchmarks at a fixed iteration count (one op is a few
# µs, so 1x would only measure harness overhead), and records both in
# BENCH_pr2.json: ns/op, whatif-calls/op and hit-rate per benchmark.
BENCH_PATTERN ?= MainResult|Fig|Table
BENCH_OUT ?= BENCH_pr2.json

bench:
	{ $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1x -count 1 . && \
	  $(GO) test -run '^$$' -bench 'WhatIfCached' -benchtime 20000x -count 1 . ; } \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

package defense

import (
	"context"
	"strings"

	"repro/internal/workload"
)

// Screener is the pluggable batch-screening strategy the guarded update path
// composes with (guard.Config.Screener): given an incoming training batch it
// returns the queries safe to learn from plus a Report naming the strategy
// and the per-query drop reasons. Screen must not mutate the incoming
// workload, and implementations that fit models internally (defense/trim)
// must leave the advisor byte-identical to its pre-call state.
type Screener interface {
	Name() string
	Screen(incoming *workload.Workload) (*workload.Workload, *Report)
}

// CtxScreener is implemented by screeners that record trace spans: ScreenCtx
// parents its spans under the context's active span (obs.SpanFrom). ScreenWith
// prefers it when available.
type CtxScreener interface {
	Screener
	ScreenCtx(ctx context.Context, incoming *workload.Workload) (*workload.Workload, *Report)
}

// ScreenWith screens through s, routing the context to ScreenCtx when s
// implements it so trace correlation survives the interface boundary.
func ScreenWith(ctx context.Context, s Screener, incoming *workload.Workload) (*workload.Workload, *Report) {
	if cs, ok := s.(CtxScreener); ok {
		return cs.ScreenCtx(ctx, incoming)
	}
	return s.Screen(incoming)
}

// ScreenCleanWith screens a workload the caller vouches for as clean and
// counts every drop — by definition a false positive — on
// defense_clean_dropped_total. The screened workload is discarded: this
// measures the screener's collateral damage, it does not sanitize.
func ScreenCleanWith(s Screener, clean *workload.Workload) *Report {
	_, report := s.Screen(clean)
	cleanDroppedTotal.Add(int64(report.Dropped))
	return report
}

// Chain runs several screeners in sequence: the queries one keeps feed the
// next, so the combined drop set is the union (the "sanitizer+trim" stacked
// strategy: cheap per-query screening first, robust retraining over the
// survivors). Its Name joins the sub-screeners' names with "+", and merged
// drop reasons are prefixed with the sub-screener's name unless the reason
// already carries it (trim reasons name their variant themselves).
type Chain struct {
	Screeners []Screener
}

// NewChain builds a chain; at least one screener is required.
func NewChain(ss ...Screener) *Chain { return &Chain{Screeners: ss} }

// Name implements Screener.
func (c *Chain) Name() string {
	names := make([]string, len(c.Screeners))
	for i, s := range c.Screeners {
		names[i] = s.Name()
	}
	return strings.Join(names, "+")
}

// Screen implements Screener.
func (c *Chain) Screen(incoming *workload.Workload) (*workload.Workload, *Report) {
	return c.ScreenCtx(context.Background(), incoming)
}

// ScreenCtx implements CtxScreener, threading the context through every
// sub-screener that accepts one.
func (c *Chain) ScreenCtx(ctx context.Context, incoming *workload.Workload) (*workload.Workload, *Report) {
	report := &Report{Strategy: c.Name(), Reasons: make(map[string]string)}
	cur := incoming
	for _, s := range c.Screeners {
		kept, sub := ScreenWith(ctx, s, cur)
		for q, why := range sub.Reasons {
			if !strings.HasPrefix(why, s.Name()+":") {
				why = s.Name() + ":" + why
			}
			report.Reasons[q] = why
		}
		report.Dropped += sub.Dropped
		cur = kept
	}
	report.Kept = cur.Len()
	return cur, report
}

// Package obs is the telemetry substrate of the reproduction: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms and bounded
// series), a hierarchical span tracer with an injectable clock, and
// structured run reports. Every hot layer of the pipeline — what-if costing,
// advisor training, PIPA probing/injecting, query generation, plan
// execution — feeds the process-wide Default observer; cmd/pipa-bench turns
// it into a JSON run report and a Prometheus/pprof endpoint.
//
// Design constraints, in order: (1) hot-path cost must be a single atomic
// add — callers cache *Counter handles at package init; (2) determinism —
// telemetry never feeds back into experiment behaviour, and the tracer's
// clock is injectable so tests stay reproducible (DESIGN.md §5); (3) zero
// dependencies beyond the stdlib.
package obs

import "time"

// Observer bundles one metrics registry, one span tracer, and one flight
// recorder for request-scoped traces.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
	Flight  *FlightRecorder
}

// New creates an observer. clock may be nil for wall time.
func New(clock Clock) *Observer {
	if clock == nil {
		clock = time.Now
	}
	return &Observer{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(clock),
		Flight:  NewFlightRecorder(DefaultFlightCap),
	}
}

// Default is the process-wide observer all instrumented packages feed.
var Default = New(nil)

// Reset zeroes every metric value, drops all recorded spans and flight
// records on the Default observer, and rewinds the deterministic trace ID
// sequence. Registered metric objects survive, so cached handles remain
// valid.
func Reset() {
	Default.Metrics.Reset()
	Default.Tracer.Reset()
	Default.Flight.Reset()
	ResetTraceIDs()
}

// GetCounter returns (registering if needed) a counter on the Default
// registry. Hot paths call this once at package init and keep the handle.
func GetCounter(name string) *Counter { return Default.Metrics.Counter(name) }

// GetGauge returns a gauge handle on the Default registry.
func GetGauge(name string) *Gauge { return Default.Metrics.Gauge(name) }

// Inc increments a Default-registry counter by one.
func Inc(name string) { Default.Metrics.Counter(name).Inc() }

// Add increments a Default-registry counter by d.
func Add(name string, d int64) { Default.Metrics.Counter(name).Add(d) }

// SetGauge sets a Default-registry gauge.
func SetGauge(name string, v float64) { Default.Metrics.Gauge(name).Set(v) }

// Observe records one sample into a Default-registry histogram with the
// default buckets.
func Observe(name string, v float64) { Default.Metrics.Histogram(name, nil).Observe(v) }

// Record appends one value to a Default-registry series.
func Record(name string, v float64) { Default.Metrics.Series(name).Append(v) }

// StartSpan opens a span on the Default tracer, nested under the currently
// open span. Close it with Span.End (typically deferred).
func StartSpan(name string) *Span { return Default.Tracer.Start(name) }

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sync/atomic"

	"repro/internal/advisor"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/defense"
	"repro/internal/guard"
	"repro/internal/obs"
	olog "repro/internal/obs/log"
	"repro/internal/workload"
)

// stubAdvisor is a deterministic snapshottable advisor for serving tests.
// Its whole "model" is a version counter plus a poisoned flag: Retrain bumps
// the version and poisons on a frequency marker (poisonFreq), and Recommend
// answers with the column selected by the version — so a model swap, a
// rollback, or a restore is directly observable in the recommendation.
//
// Instances are either owned by one goroutine at a time (training instance
// on the trainer loop, replicas handed out by the model pool) or, for
// fallback instances, never mutated — so no locking is needed.
type stubAdvisor struct {
	version  int64
	poisoned bool
	gate     chan struct{} // non-nil: each Recommend consumes one token
	cols     []string
}

const poisonFreq = 666

var stubCols = []string{"lineitem.l_partkey", "lineitem.l_shipdate", "lineitem.l_quantity"}

func newStub(gate chan struct{}) *stubAdvisor {
	return &stubAdvisor{gate: gate, cols: stubCols}
}

func (a *stubAdvisor) Name() string     { return "stub" }
func (a *stubAdvisor) TrialBased() bool { return false }

func (a *stubAdvisor) Train(w *workload.Workload) { a.version = 1; a.poisoned = false }

func (a *stubAdvisor) Retrain(w *workload.Workload) {
	a.version++
	if len(w.Freqs) > 0 && w.Freqs[0] == poisonFreq {
		a.poisoned = true
	}
}

func (a *stubAdvisor) Recommend(w *workload.Workload) []cost.Index {
	if a.gate != nil {
		<-a.gate
	}
	return []cost.Index{cost.NewIndex(a.cols[int(a.version)%len(a.cols)])}
}

func (a *stubAdvisor) Snapshot() ([]byte, error) {
	return []byte(fmt.Sprintf("%d|%t", a.version, a.poisoned)), nil
}

func (a *stubAdvisor) Restore(b []byte) error {
	parts := strings.SplitN(string(b), "|", 2)
	if len(parts) != 2 {
		return fmt.Errorf("stub: bad snapshot %q", b)
	}
	v, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return err
	}
	a.version = v
	a.poisoned = parts[1] == "true"
	return nil
}

var (
	_ advisor.Advisor     = (*stubAdvisor)(nil)
	_ advisor.Snapshotter = (*stubAdvisor)(nil)
)

// stubCanaryCost scripts the guard gate off the stub's poisoned flag: the
// anchor (taken at Train, unpoisoned) is 1.0, so a poisoned model regresses
// by 100% and a clean one by 0%.
func stubCanaryCost(a advisor.Advisor) float64 {
	if a.(*stubAdvisor).poisoned {
		return 2.0
	}
	return 1.0
}

type testEnv struct {
	srv     *Server
	trainer *guard.Trainer
	ts      *httptest.Server
}

// newTestServer wires a full daemon around stub advisors. gate, when
// non-nil, makes every full-tier replica Recommend consume one token from it
// — the lever the overload tests use to hold requests in flight. The
// fallback stub is ungated unless the mutate hook replaces it.
func newTestServer(t *testing.T, gate chan struct{}, mutate func(*Config), gcfg func(*guard.Config)) *testEnv {
	t.Helper()
	s := catalog.TPCH(1)
	whatIf := cost.NewWhatIf(cost.NewModel(s))

	training := newStub(nil)
	gc := guard.Config{CanaryCost: stubCanaryCost}
	if gcfg != nil {
		gcfg(&gc)
	}
	trainer, err := guard.NewTrainer(training, gc)
	if err != nil {
		t.Fatal(err)
	}
	trainer.Train(workload.New())

	cfg := Config{
		Trainer:    trainer,
		NewReplica: func() (advisor.Advisor, error) { return newStub(gate), nil },
		Fallback:   newStub(nil),
		WhatIf:     whatIf,
		Schema:     s,
		// Per-test flight ring and a quiet logger, so parallel tests do not
		// share the Default observer's recorder or spam stderr.
		Flight: obs.NewFlightRecorder(0),
		Logger: olog.New(io.Discard, olog.LevelError, nil),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return &testEnv{srv: srv, trainer: trainer, ts: ts}
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Error(err)
		return resp.StatusCode, nil
	}
	return resp.StatusCode, b
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const oneQuery = `{"queries":["SELECT l_partkey FROM lineitem WHERE l_quantity > 30"]}`
const otherQuery = `{"queries":["SELECT COUNT(*) FROM orders"]}`

func TestRecommendFullTier(t *testing.T) {
	env := newTestServer(t, nil, nil, nil)
	code, body := postJSON(t, env.ts.URL+"/v1/recommend", oneQuery)
	if code != http.StatusOK {
		t.Fatalf("status %d, body %s", code, body)
	}
	var rr RecommendResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	// Trained stub is at version 1 → cols[1].
	if rr.Tier != "full" || rr.ModelVersion != 1 {
		t.Errorf("tier=%s version=%d, want full v1", rr.Tier, rr.ModelVersion)
	}
	if len(rr.Indexes) != 1 || rr.Indexes[0] != "lineitem(l_shipdate)" {
		t.Errorf("indexes = %v, want [lineitem(l_shipdate)]", rr.Indexes)
	}
	if len(rr.DDL) != 1 || rr.DDL[0] != "CREATE INDEX ON lineitem(l_shipdate);" {
		t.Errorf("ddl = %v", rr.DDL)
	}
	if rr.CostReduction < 0 || rr.CostReduction > 1 {
		t.Errorf("cost reduction %f out of range", rr.CostReduction)
	}
}

func TestRecommendBadRequests(t *testing.T) {
	env := newTestServer(t, nil, nil, nil)
	cases := []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"no queries", `{"queries":[]}`},
		{"freqs mismatch", `{"queries":["SELECT COUNT(*) FROM orders"],"freqs":[1,2]}`},
		{"unparseable sql", `{"queries":["SELECT FROM WHERE"]}`},
		{"unknown table", `{"queries":["SELECT x FROM nope"]}`},
	}
	for _, c := range cases {
		code, body := postJSON(t, env.ts.URL+"/v1/recommend", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d want 400 (body %s)", c.name, code, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not well-formed: %s", c.name, body)
		}
	}
	if code := getJSON(t, env.ts.URL+"/v1/recommend", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET recommend: status %d want 405", code)
	}
}

func TestUpdateCommitSwapsModel(t *testing.T) {
	env := newTestServer(t, nil, nil, nil)

	code, body := postJSON(t, env.ts.URL+"/v1/update", oneQuery)
	if code != http.StatusOK {
		t.Fatalf("update status %d, body %s", code, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Outcome != "committed" || ur.GuardState != "closed" || ur.ModelVersion != 2 {
		t.Fatalf("update = %+v, want committed/closed/v2", ur)
	}

	// The swapped-in model (stub version 2) must now answer: cols[2].
	code, body = postJSON(t, env.ts.URL+"/v1/recommend", oneQuery)
	if code != http.StatusOK {
		t.Fatalf("recommend status %d", code)
	}
	var rr RecommendResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ModelVersion != 2 || rr.Indexes[0] != "lineitem(l_quantity)" {
		t.Errorf("after commit: version=%d indexes=%v, want v2 [lineitem(l_quantity)]", rr.ModelVersion, rr.Indexes)
	}
}

func TestUpdatePoisonRollsBackAndQuarantines(t *testing.T) {
	env := newTestServer(t, nil, nil, nil)
	poison := fmt.Sprintf(`{"queries":["SELECT COUNT(*) FROM orders"],"freqs":[%d]}`, poisonFreq)
	code, body := postJSON(t, env.ts.URL+"/v1/update", poison)
	if code != http.StatusOK {
		t.Fatalf("update status %d, body %s", code, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Outcome != "rolled-back" {
		t.Fatalf("outcome %s, want rolled-back", ur.Outcome)
	}
	if ur.CanaryRegression <= 0.02 {
		t.Errorf("regression %f, want > budget", ur.CanaryRegression)
	}
	if ur.ModelVersion != 1 {
		t.Errorf("model version %d after rollback, want 1 (no swap)", ur.ModelVersion)
	}
	if ur.Quarantined == 0 {
		t.Error("poisoned batch not quarantined")
	}

	var qr QuarantineResponse
	if code := getJSON(t, env.ts.URL+"/v1/quarantine", &qr); code != http.StatusOK {
		t.Fatalf("quarantine status %d", code)
	}
	if len(qr.Entries) == 0 || !strings.Contains(qr.Entries[0].Reason, "canary-regression") {
		t.Errorf("quarantine entries = %+v, want canary-regression reason", qr.Entries)
	}
}

func TestUpdateQueueSheds(t *testing.T) {
	// Park the trainer loop inside an update via a gated canary hook, fill
	// the one-slot queue, and check the next update sheds with 429.
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	var gateCalls atomic.Int64
	env := newTestServer(t, nil, func(c *Config) {
		c.UpdateQueue = 1
	}, func(g *guard.Config) {
		g.CanaryCost = func(a advisor.Advisor) float64 {
			if gateCalls.Add(1) > 1 { // call 1 is the Train anchor
				entered <- struct{}{}
				<-release
			}
			return stubCanaryCost(a)
		}
	})

	results := make(chan int, 2)
	post := func() {
		code, _ := postJSON(t, env.ts.URL+"/v1/update", oneQuery)
		results <- code
	}
	go post()
	<-entered // trainer is parked inside the first update; queue is empty
	go post()
	waitUntil(t, 5*time.Second, "second update queued", func() bool {
		return len(env.srv.updates) == 1
	})

	code, body := postJSON(t, env.ts.URL+"/v1/update", oneQuery)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third update: status %d want 429 (body %s)", code, body)
	}
	close(release)
	<-entered // second update reaches the canary too
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Errorf("parked update %d: status %d want 200", i, code)
		}
	}
}

func TestShedHasRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	env := newTestServer(t, gate, func(c *Config) {
		c.QueueDepth = 1
		c.DefaultTimeout = 30 * time.Second
		c.DegradeAfter = 25 * time.Second
	}, nil)
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		quietPost(env.ts.URL+"/v1/recommend", oneQuery)
	}()
	waitUntil(t, 5*time.Second, "slot held", func() bool { return env.srv.Admission().InUse() == 1 })

	resp, err := http.Post(env.ts.URL+"/v1/recommend", "application/json", strings.NewReader(oneQuery))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want 1", resp.Header.Get("Retry-After"))
	}
	gate <- struct{}{} // release the parked request
	<-parked
}

// quietPost is postJSON for background goroutines that may outlive the test
// body: it never touches testing.T.
func quietPost(url, body string) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestStatusAndHealthEndpoints(t *testing.T) {
	env := newTestServer(t, nil, nil, nil)
	var st StatusResponse
	if code := getJSON(t, env.ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status endpoint: %d", code)
	}
	if !st.Ready || st.Draining || st.ModelVersion != 1 || st.GuardState != "closed" {
		t.Errorf("status = %+v", st)
	}
	if st.AdmissionCap != 64 {
		t.Errorf("admission cap %d, want default 64", st.AdmissionCap)
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		if code := getJSON(t, env.ts.URL+path, nil); code != http.StatusOK {
			t.Errorf("%s: status %d want 200", path, code)
		}
	}
}

func TestDrainRejectsAndReportsNotReady(t *testing.T) {
	env := newTestServer(t, nil, nil, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := env.srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	if code := getJSON(t, env.ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: status %d want 503", code)
	}
	if code, _ := postJSON(t, env.ts.URL+"/v1/recommend", oneQuery); code != http.StatusServiceUnavailable {
		t.Errorf("recommend after drain: status %d want 503", code)
	}
	if code, _ := postJSON(t, env.ts.URL+"/v1/update", oneQuery); code != http.StatusServiceUnavailable {
		t.Errorf("update after drain: status %d want 503", code)
	}
	// Idempotent.
	if err := env.srv.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	gate := make(chan struct{})
	env := newTestServer(t, gate, func(c *Config) {
		c.DefaultTimeout = 30 * time.Second
		c.DegradeAfter = 25 * time.Second // keep the request in the full tier
	}, nil)

	// Use a real listener: httptest.Server.Close does its own draining, but
	// here Server.Drain has to be the thing that waits for in-flight work.
	addr, err := env.srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	got := make(chan *RecommendResponse, 1)
	go func() {
		code, body := postJSON(t, base+"/v1/recommend", oneQuery)
		if code != http.StatusOK {
			t.Errorf("in-flight request: status %d body %s", code, body)
			got <- nil
			return
		}
		var rr RecommendResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Error(err)
			got <- nil
			return
		}
		got <- &rr
	}()
	waitUntil(t, 5*time.Second, "request in flight", func() bool {
		return env.srv.Admission().InUse() == 1
	})

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- env.srv.Drain(ctx)
	}()
	// Drain must not finish while the request is still gated.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) with a request in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	gate <- struct{}{} // let the in-flight request finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rr := <-got; rr == nil {
		t.Fatal("in-flight request failed during drain")
	} else if rr.Tier != "full" {
		t.Errorf("in-flight tier %s, want full", rr.Tier)
	}
}

func TestDegradationLadder(t *testing.T) {
	gate := make(chan struct{})
	env := newTestServer(t, gate, func(c *Config) {
		c.Replicas = 1
		c.DegradeAfter = 10 * time.Millisecond
		c.DefaultTimeout = 30 * time.Second
		c.BreakerThreshold = 100 // keep the full tier open throughout
	}, nil)

	// Prime the cache: one full-tier answer for oneQuery.
	prime := make(chan []byte, 1)
	go func() {
		_, body := postJSON(t, env.ts.URL+"/v1/recommend", oneQuery)
		prime <- body
	}()
	gate <- struct{}{}
	var primed RecommendResponse
	if err := json.Unmarshal(<-prime, &primed); err != nil {
		t.Fatal(err)
	}
	if primed.Tier != "full" {
		t.Fatalf("prime tier %s, want full", primed.Tier)
	}

	// Park the only replica with a different workload.
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		postJSON(t, env.ts.URL+"/v1/recommend", otherQuery)
	}()
	waitUntil(t, 5*time.Second, "replica parked", func() bool {
		return env.srv.Admission().InUse() == 1
	})
	// The parked request holds the admission slot before it holds the
	// replica; wait until the replica pool is actually empty.
	waitUntil(t, 5*time.Second, "replica taken", func() bool {
		return len(env.srv.model.replicas) == 0
	})

	// Replica busy + cache hit → cached tier, same answer as the prime.
	code, body := postJSON(t, env.ts.URL+"/v1/recommend", oneQuery)
	if code != http.StatusOK {
		t.Fatalf("cached request: status %d body %s", code, body)
	}
	var cached RecommendResponse
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if cached.Tier != "cached" {
		t.Fatalf("tier %s, want cached", cached.Tier)
	}
	if cached.Indexes[0] != primed.Indexes[0] || cached.ModelVersion != primed.ModelVersion {
		t.Errorf("cached answer %+v differs from primed %+v", cached, primed)
	}

	// Replica busy + cache miss → heuristic tier (ungated fallback).
	code, body = postJSON(t, env.ts.URL+"/v1/recommend",
		`{"queries":["SELECT SUM(l_extendedprice) FROM lineitem"]}`)
	if code != http.StatusOK {
		t.Fatalf("heuristic request: status %d body %s", code, body)
	}
	var heur RecommendResponse
	if err := json.Unmarshal(body, &heur); err != nil {
		t.Fatal(err)
	}
	if heur.Tier != "heuristic" {
		t.Fatalf("tier %s, want heuristic", heur.Tier)
	}

	gate <- struct{}{} // release the parked request
	<-parked
}

// dropFirstScreener drops the first query of every multi-query batch — a
// minimal screener to observe the screen fields on the update/status wire.
type dropFirstScreener struct{}

func (dropFirstScreener) Name() string { return "dropfirst" }

func (dropFirstScreener) Screen(w *workload.Workload) (*workload.Workload, *defense.Report) {
	rep := &defense.Report{Strategy: "dropfirst", Reasons: map[string]string{}}
	kept := &workload.Workload{}
	for i, q := range w.Queries {
		if i == 0 && w.Len() > 1 {
			rep.Dropped++
			rep.Reasons[q.String()] = "dropfirst:first"
			continue
		}
		kept.Add(q, w.Freqs[i])
		rep.Kept++
	}
	return kept, rep
}

func TestUpdateAndStatusReportScreenStrategy(t *testing.T) {
	env := newTestServer(t, nil, nil, func(gc *guard.Config) { gc.Screener = dropFirstScreener{} })

	var st StatusResponse
	if code := getJSON(t, env.ts.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if st.ScreenStrategy != "dropfirst" {
		t.Fatalf("status screen_strategy = %q", st.ScreenStrategy)
	}

	two := `{"queries":["SELECT COUNT(*) FROM orders","SELECT l_partkey FROM lineitem WHERE l_quantity > 30"]}`
	code, body := postJSON(t, env.ts.URL+"/v1/update", two)
	if code != http.StatusOK {
		t.Fatalf("update status %d, body %s", code, body)
	}
	var ur UpdateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.ScreenStrategy != "dropfirst" || ur.ScreenDropped != 1 {
		t.Fatalf("update = %+v, want screen_strategy=dropfirst screen_dropped=1", ur)
	}
	if ur.Outcome != "committed" {
		t.Fatalf("outcome %s", ur.Outcome)
	}

	// The dropped query lands in quarantine with the screener's reason.
	var qr QuarantineResponse
	if code := getJSON(t, env.ts.URL+"/v1/quarantine", &qr); code != http.StatusOK {
		t.Fatalf("quarantine status %d", code)
	}
	found := false
	for _, e := range qr.Entries {
		if strings.Contains(e.Reason, "dropfirst:first") {
			found = true
		}
	}
	if !found {
		t.Errorf("quarantine entries = %+v, want a dropfirst:first reason", qr.Entries)
	}
}

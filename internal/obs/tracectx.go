package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing (DESIGN.md §11). The package-level Tracer records a
// single span forest for the sequential experiment pipeline; a Trace is its
// concurrent counterpart: one per request, propagated through
// context.Context, safe to grow from several goroutines (the HTTP handler and
// the trainer loop both add spans to one update trace), and identified by a
// deterministic trace ID that the serving daemon echoes in every response.
//
// IDs are deterministic by construction — a process-wide sequence number
// scrambled through SplitMix64 — so two identical runs (same request order)
// produce identical trace IDs and tests can assert exact span parentage.

// traceSeq numbers every trace created in this process, in creation order.
var traceSeq atomic.Uint64

// ResetTraceIDs rewinds the deterministic trace ID sequence (tests only).
func ResetTraceIDs() { traceSeq.Store(0) }

// splitmix64 is the SplitMix64 finalizer: a cheap, high-quality bijection
// from sequence numbers to well-spread 64-bit IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextTraceID renders the next deterministic 16-byte trace ID as 32 hex
// digits (the W3C traceparent width).
func nextTraceID() string {
	n := traceSeq.Add(1)
	return fmt.Sprintf("%016x%016x", splitmix64(n), splitmix64(n^0xa5a5a5a5a5a5a5a5))
}

// KV is one string attribute on a span or trace.
type KV struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Trace is one request-scoped span tree: a root span, child spans keyed by
// deterministic per-trace span IDs, trace-level attributes (batch
// fingerprint, guard verdict, tier) and anomaly markers that decide whether
// the flight recorder retains it. All methods are safe for concurrent use.
type Trace struct {
	mu        sync.Mutex
	id        string
	name      string
	clock     Clock
	spanSeq   uint64
	root      *TSpan
	anomalies []string
	attrs     []KV
	remote    string // parent span ID from an incoming traceparent header
}

// NewTrace opens a trace whose root span is named name. clock may be nil for
// wall time.
func NewTrace(name string, clock Clock) *Trace {
	return NewTraceFrom(name, "", clock)
}

// NewTraceFrom is NewTrace adopting an incoming traceparent header: a valid
// header contributes the trace ID (so cross-service causality joins up) and
// the remote parent span ID; an empty or malformed one falls back to a fresh
// deterministic ID.
func NewTraceFrom(name, traceparent string, clock Clock) *Trace {
	if clock == nil {
		clock = time.Now
	}
	t := &Trace{name: name, clock: clock}
	if tid, sid, ok := ParseTraceparent(traceparent); ok {
		t.id = tid
		t.remote = sid
	} else {
		t.id = nextTraceID()
	}
	t.root = &TSpan{
		tr:       t,
		name:     name,
		id:       t.nextSpanIDLocked(),
		parentID: t.remote,
		start:    clock(),
	}
	return t
}

// nextSpanIDLocked issues the next per-trace span ID (sequential, rendered
// as 16 hex digits). Callers hold t.mu or have exclusive access.
func (t *Trace) nextSpanIDLocked() string {
	t.spanSeq++
	return fmt.Sprintf("%016x", t.spanSeq)
}

// ID returns the 32-hex-digit trace ID.
func (t *Trace) ID() string { return t.id }

// Name returns the root span name.
func (t *Trace) Name() string { return t.name }

// Root returns the root span.
func (t *Trace) Root() *TSpan { return t.root }

// Traceparent renders the W3C-style header value for this trace's root span.
func (t *Trace) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", t.id, t.root.id)
}

// Annotate adds a trace-level attribute (later values do not overwrite
// earlier ones; consumers read the last occurrence of a key).
func (t *Trace) Annotate(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, KV{k, v})
	t.mu.Unlock()
}

// MarkAnomaly flags the trace as anomalous (shed, deadline, degraded tier,
// quarantine, rollback, breaker trip, ...). Anomalous traces are retained by
// the flight recorder; duplicate kinds collapse.
func (t *Trace) MarkAnomaly(kind string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, a := range t.anomalies {
		if a == kind {
			t.mu.Unlock()
			return
		}
	}
	t.anomalies = append(t.anomalies, kind)
	t.mu.Unlock()
}

// Anomalies returns the anomaly kinds marked so far.
func (t *Trace) Anomalies() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.anomalies...)
}

// End closes the root span (and with it any still-open descendants).
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.root.End()
}

// TSpan is one timed region of a Trace. The zero value is unusable; spans
// come from Trace.Root and StartChild. A nil *TSpan is a valid no-op target
// for every method, so un-traced contexts cost a nil check and nothing else.
type TSpan struct {
	tr       *Trace
	name     string
	id       string
	parentID string
	start    time.Time
	end      time.Time
	ended    bool
	attrs    []KV
	children []*TSpan
}

// Trace returns the owning trace (nil for a nil span).
func (s *TSpan) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// ID returns the span's 16-hex-digit ID ("" for a nil span).
func (s *TSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartChild opens a child span. Safe to call from any goroutine; returns
// nil (a no-op span) when s is nil.
func (s *TSpan) StartChild(name string) *TSpan {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	c := &TSpan{tr: t, name: name, id: t.nextSpanIDLocked(), parentID: s.id, start: t.clock()}
	s.children = append(s.children, c)
	t.mu.Unlock()
	return c
}

// End closes the span; descendants still open are closed at the same
// instant. Idempotent, nil-safe.
func (s *TSpan) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	now := t.clock()
	s.endLocked(now)
	t.mu.Unlock()
}

func (s *TSpan) endLocked(now time.Time) {
	if s.ended {
		return
	}
	s.end = now
	s.ended = true
	for _, c := range s.children {
		c.endLocked(now)
	}
}

// Annotate adds a span attribute. Nil-safe.
func (s *TSpan) Annotate(k, v string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, KV{k, v})
	s.tr.mu.Unlock()
}

// Event records a zero-duration child span — a point-in-time marker such as
// a retry attempt or a breaker transition. kv pairs become its attributes.
func (s *TSpan) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	now := t.clock()
	c := &TSpan{tr: t, name: name, id: t.nextSpanIDLocked(), parentID: s.id, start: now, end: now, ended: true}
	for i := 0; i+1 < len(kv); i += 2 {
		c.attrs = append(c.attrs, KV{kv[i], kv[i+1]})
	}
	s.children = append(s.children, c)
	t.mu.Unlock()
}

// TSpanSnapshot is the JSON form of one request-scoped span. Times are
// offsets from the trace root start, so fake-clock runs marshal identically.
type TSpanSnapshot struct {
	Name     string           `json:"name"`
	SpanID   string           `json:"span_id"`
	ParentID string           `json:"parent_id,omitempty"`
	StartUs  int64            `json:"start_us"`
	DurUs    int64            `json:"dur_us"` // -1 while still open
	Attrs    []KV             `json:"attrs,omitempty"`
	Children []*TSpanSnapshot `json:"children,omitempty"`
}

// Attr returns the last value annotated under k ("", false when absent).
func (s *TSpanSnapshot) Attr(k string) (string, bool) {
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].K == k {
			return s.Attrs[i].V, true
		}
	}
	return "", false
}

// FindTSpan returns the first snapshot named name in a depth-first walk
// rooted at s, or nil.
func FindTSpan(s *TSpanSnapshot, name string) *TSpanSnapshot {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := FindTSpan(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TraceSnapshot is the JSON form of one trace: identity, anomaly markers,
// trace-level attributes and the full span tree.
type TraceSnapshot struct {
	TraceID   string   `json:"trace_id"`
	Name      string   `json:"name"`
	Anomalies []string `json:"anomalies,omitempty"`
	Attrs     []KV     `json:"attrs,omitempty"`

	Root *TSpanSnapshot `json:"root"`
}

// Attr returns the last value annotated under k ("", false when absent).
func (t *TraceSnapshot) Attr(k string) (string, bool) {
	for i := len(t.Attrs) - 1; i >= 0; i-- {
		if t.Attrs[i].K == k {
			return t.Attrs[i].V, true
		}
	}
	return "", false
}

// Snapshot captures the trace's current state. Open spans report DurUs -1.
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceSnapshot{
		TraceID:   t.id,
		Name:      t.name,
		Anomalies: append([]string(nil), t.anomalies...),
		Attrs:     append([]KV(nil), t.attrs...),
		Root:      snapshotTSpan(t.root, t.root.start),
	}
}

func snapshotTSpan(s *TSpan, base time.Time) *TSpanSnapshot {
	snap := &TSpanSnapshot{
		Name:     s.name,
		SpanID:   s.id,
		ParentID: s.parentID,
		StartUs:  s.start.Sub(base).Microseconds(),
		DurUs:    -1,
		Attrs:    append([]KV(nil), s.attrs...),
	}
	if s.ended {
		snap.DurUs = s.end.Sub(s.start).Microseconds()
	}
	for _, c := range s.children {
		snap.Children = append(snap.Children, snapshotTSpan(c, base))
	}
	return snap
}

// ParseTraceparent extracts the trace and parent span IDs from a
// "00-<32 hex>-<16 hex>-<2 hex>" header value. ok is false for anything
// malformed (including the all-zero IDs the spec reserves).
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", "", false
	}
	if !isLowerHex(parts[1]) || !isLowerHex(parts[2]) {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// spanCtxKey carries the active *TSpan through context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *TSpan) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the active span in ctx, or nil. The nil span no-ops, so
// callers may use the result unconditionally.
func SpanFrom(ctx context.Context) *TSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*TSpan)
	return s
}

// TraceCtxFrom returns the trace owning the active span in ctx, or nil.
func TraceCtxFrom(ctx context.Context) *Trace {
	return SpanFrom(ctx).Trace()
}

// StartSpanCtx opens a child of ctx's active span and returns a context with
// the child active. Without a trace in ctx it returns (ctx, nil) — one
// branch, zero allocation, so instrumented hot paths cost nothing untraced.
func StartSpanCtx(ctx context.Context, name string) (context.Context, *TSpan) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

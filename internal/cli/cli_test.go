package cli

import (
	"os"
	"syscall"
	"testing"
	"time"
)

func TestInterruptContextCancelsOnSIGTERM(t *testing.T) {
	ctx, stop := InterruptContext()
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after SIGTERM")
	}
}

func TestExitOnInterruptExits130(t *testing.T) {
	codes := make(chan int, 1)
	exit = func(code int) {
		codes <- code
		select {} // os.Exit never returns; park the goroutine like it would
	}
	defer func() { exit = os.Exit }()

	stop := ExitOnInterrupt("clitest")
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case code := <-codes:
		if code != ExitInterrupted {
			t.Fatalf("exit code = %d, want %d", code, ExitInterrupted)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no exit after SIGTERM")
	}
}

func TestExitOnInterruptStopUninstalls(t *testing.T) {
	called := make(chan int, 1)
	exit = func(code int) {
		called <- code
		select {}
	}
	defer func() { exit = os.Exit }()

	stop := ExitOnInterrupt("clitest")
	stop()
	// After stop the goroutine is gone; nothing should observe this signal
	// through the helper (the default disposition is restored, but the test
	// binary's own handler from other tests may still swallow it — so send
	// nothing and only assert the helper goroutine exited without firing).
	select {
	case code := <-called:
		t.Fatalf("exit(%d) fired without a signal", code)
	case <-time.After(50 * time.Millisecond):
	}
}
